type series = { label : string; points : (int * float) list }

let render_rows ~title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value (List.nth_opt row c) ~default:"" in
           let pad = String.make (w - String.length cell) ' ' in
           if c = 0 then cell ^ pad else pad ^ cell)
         widths)
  in
  let sep =
    String.make (List.fold_left ( + ) (2 * (ncols - 1)) widths) '-'
  in
  String.concat "\n"
    ([ ""; "== " ^ title ^ " =="; render_row header; sep ]
    @ List.map render_row rows
    @ [ "" ])

let print_rows ~title ~header rows =
  print_string (render_rows ~title ~header rows);
  print_newline ()

let render ~title ~xlabel series =
  let xs =
    List.concat_map (fun s -> List.map fst s.points) series
    |> List.sort_uniq compare
  in
  let header = xlabel :: List.map (fun s -> s.label) series in
  let rows =
    List.map
      (fun x ->
        string_of_int x
        :: List.map
             (fun s ->
               match List.assoc_opt x s.points with
               | Some y -> Printf.sprintf "%.0f" y
               | None -> "-")
             series)
      xs
  in
  render_rows ~title ~header rows

let print ~title ~xlabel series =
  print_string (render ~title ~xlabel series);
  print_newline ()

(** Plain-text rendering of benchmark results: one aligned table per
    figure, x values down the rows and one column per series — the same
    rows/series the paper plots. *)

type series = { label : string; points : (int * float) list }

val render : title:string -> xlabel:string -> series list -> string
(** missing (x, series) combinations render as "-" *)

val print : title:string -> xlabel:string -> series list -> unit

val render_rows :
  title:string -> header:string list -> string list list -> string
(** free-form table for Figure 8-style breakdowns *)

val print_rows : title:string -> header:string list -> string list list -> unit

lib/workload/table.ml: List Option Printf String

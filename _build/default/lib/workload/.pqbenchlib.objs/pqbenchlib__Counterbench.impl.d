lib/workload/counterbench.ml: Api Pqfunnel Pqsim Sim Stats

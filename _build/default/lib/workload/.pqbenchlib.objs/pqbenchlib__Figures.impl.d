lib/workload/figures.ml: Counterbench Fun List Pqcore Pqcounters Pqsim Printf Table Workload

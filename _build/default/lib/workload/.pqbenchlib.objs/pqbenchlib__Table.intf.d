lib/workload/table.mli:

lib/workload/figures.mli: Table

lib/workload/counterbench.mli:

lib/workload/workload.ml: Api Array List Mem Pqcore Pqfunnel Pqsim Pqsync Printf Sim Stats

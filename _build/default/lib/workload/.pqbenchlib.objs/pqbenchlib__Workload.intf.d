lib/workload/workload.mli: Pqsim

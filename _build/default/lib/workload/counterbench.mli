(** Benchmark driver for the funnel counters (paper Figure 5): latency of
    the plain combining fetch-and-add versus the bounded
    fetch-and-decrement with elimination, under a configurable mix of
    increments and decrements. *)

type mode =
  | Faa  (** plain combining fetch-and-add, heterogeneous trees *)
  | Bounded of { elim : bool }
      (** homogeneous inc / bounded-dec (floor 0), optional elimination *)

val run :
  mode:mode ->
  nprocs:int ->
  dec_percent:int ->
  ?ops_per_proc:int ->
  ?local_work:int ->
  ?seed:int ->
  unit ->
  float
(** average latency in cycles per counter operation *)

open Pqsim

type mode = Faa | Bounded of { elim : bool }

let run ~mode ~nprocs ~dec_percent ?(ops_per_proc = 60) ?(local_work = 10)
    ?(seed = 42) () =
  let init = nprocs * ops_per_proc in
  (* start high enough that bounded decrements rarely hit the floor: the
     figure measures funnel mechanics, not boundary effects *)
  let _, result =
    Sim.run ~nprocs ~seed
      ~setup:(fun mem ->
        match mode with
        | Faa -> `Faa (Pqfunnel.Fcounter.create mem ~nprocs ~init ())
        | Bounded { elim } ->
            `Bounded
              (Pqfunnel.Fcounter.create mem ~nprocs ~elim ~floor:0 ~init ()))
      ~program:(fun c _pid ->
        for _ = 1 to ops_per_proc do
          Api.work local_work;
          let dec = Api.rand 100 < dec_percent in
          Api.timed "op" (fun () ->
              match c with
              | `Faa c -> ignore (Pqfunnel.Fcounter.add c (if dec then -1 else 1))
              | `Bounded c ->
                  if dec then ignore (Pqfunnel.Fcounter.dec c)
                  else ignore (Pqfunnel.Fcounter.inc c))
        done)
      ()
  in
  Stats.mean result.Sim.stats "op"

(** Machine model: topology and cost parameters of the simulated
    cache-coherent NUMA multiprocessor.

    The model approximates the MIT-Alewife-like machine the paper simulates
    with Proteus: processors and memory modules laid out on a 2-D mesh, a
    directory-based coherence protocol, and cycle costs for cache hits,
    misses, network hops and exclusive occupancy of a cache line while a
    write or atomic operation is serviced. *)

type t = private {
  nprocs : int;  (** number of simulated processors *)
  mesh_width : int;  (** processors sit on a [mesh_width^2] grid *)
  mem_modules : int;  (** memory modules, distributed round-robin over lines *)
  cache_hit : int;  (** cycles for a read satisfied by the local cache *)
  miss_base : int;  (** base cycles for any access that reaches memory *)
  hop_cost : int;  (** extra cycles per mesh hop to the line's home module *)
  read_occupancy : int;
      (** cycles a read miss occupies the line's directory *)
  write_occupancy : int;  (** cycles a write occupies the line exclusively *)
  atomic_occupancy : int;
      (** cycles an atomic (swap/cas/faa) occupies the line exclusively *)
}

val make :
  ?mem_modules:int ->
  ?cache_hit:int ->
  ?miss_base:int ->
  ?hop_cost:int ->
  ?read_occupancy:int ->
  ?write_occupancy:int ->
  ?atomic_occupancy:int ->
  nprocs:int ->
  unit ->
  t
(** [make ~nprocs ()] builds a machine with defaults chosen to resemble the
    relative costs in the paper's testbed: cheap cache hits, memory accesses
    an order of magnitude dearer, and atomic operations holding a line a few
    cycles. *)

val hops : t -> proc:int -> line:int -> int
(** [hops t ~proc ~line] is the mesh distance between processor [proc] and
    the home module of cache line [line]. *)

val home_module : t -> int -> int
(** [home_module t line] is the memory module owning [line]. *)

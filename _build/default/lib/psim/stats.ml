type acc = {
  mutable n : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
  mutable samples : int array;
  mutable len : int;
}

type t = (string, acc) Hashtbl.t

type summary = {
  key : string;
  count : int;
  mean : float;
  min : int;
  max : int;
  p50 : int;
  p95 : int;
}

let create () = Hashtbl.create 16

let fresh () =
  { n = 0; sum = 0; min = max_int; max = min_int; samples = Array.make 64 0; len = 0 }

let record t key v =
  let acc =
    match Hashtbl.find_opt t key with
    | Some a -> a
    | None ->
        let a = fresh () in
        Hashtbl.add t key a;
        a
  in
  acc.n <- acc.n + 1;
  acc.sum <- acc.sum + v;
  if v < acc.min then acc.min <- v;
  if v > acc.max then acc.max <- v;
  if acc.len = Array.length acc.samples then begin
    let b = Array.make (2 * acc.len) 0 in
    Array.blit acc.samples 0 b 0 acc.len;
    acc.samples <- b
  end;
  acc.samples.(acc.len) <- v;
  acc.len <- acc.len + 1

let count t key =
  match Hashtbl.find_opt t key with Some a -> a.n | None -> 0

let mean t key =
  match Hashtbl.find_opt t key with
  | Some a when a.n > 0 -> float_of_int a.sum /. float_of_int a.n
  | _ -> 0.0

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let i = int_of_float (p *. float_of_int (n - 1)) in
    sorted.(i)

let summary t key =
  match Hashtbl.find_opt t key with
  | None -> None
  | Some a when a.n = 0 -> None
  | Some a ->
      let sorted = Array.sub a.samples 0 a.len in
      Array.sort compare sorted;
      Some
        {
          key;
          count = a.n;
          mean = float_of_int a.sum /. float_of_int a.n;
          min = a.min;
          max = a.max;
          p50 = percentile sorted 0.5;
          p95 = percentile sorted 0.95;
        }

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

let merge_mean t ks =
  let n = ref 0 and sum = ref 0 in
  let add key =
    match Hashtbl.find_opt t key with
    | Some a ->
        n := !n + a.n;
        sum := !sum + a.sum
    | None -> ()
  in
  List.iter add ks;
  if !n = 0 then 0.0 else float_of_int !sum /. float_of_int !n

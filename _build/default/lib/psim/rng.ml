type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let make seed = { state = mix (Int64.of_int seed) }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t i =
  let s = next64 t in
  { state = Int64.add s (mix (Int64.of_int (i + 0x1234567))) }

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod n

let bool t = Int64.logand (next64 t) 1L = 1L

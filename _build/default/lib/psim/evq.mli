(** Event queue for the discrete-event engine.

    A binary min-heap of closures keyed by (time, sequence-number).  The
    sequence number makes the ordering of same-cycle events deterministic:
    events scheduled earlier run earlier. *)

type t

val create : unit -> t

val push : t -> time:int -> (unit -> unit) -> unit
(** [push t ~time run] schedules [run] at cycle [time]. *)

val pop : t -> (int * (unit -> unit)) option
(** [pop t] removes and returns the earliest event, or [None] if empty. *)

val is_empty : t -> bool
val length : t -> int

(** Latency statistics collected during a simulation run.

    Processors record samples under string keys (e.g. ["insert"],
    ["delete_min"], ["access"]); after the run the harness extracts means
    and distribution summaries per key. *)

type t

type summary = {
  key : string;
  count : int;
  mean : float;
  min : int;
  max : int;
  p50 : int;
  p95 : int;
}

val create : unit -> t
val record : t -> string -> int -> unit
val count : t -> string -> int
val mean : t -> string -> float
(** [mean t key] is 0.0 when no sample was recorded under [key]. *)

val summary : t -> string -> summary option
val keys : t -> string list
(** sorted *)

val merge_mean : t -> string list -> float
(** [merge_mean t keys] is the mean over the union of samples of [keys]. *)

lib/psim/sim.ml: Array Effect Evq Machine Mem Printf Rng Stats

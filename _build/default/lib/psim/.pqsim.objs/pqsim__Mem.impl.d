lib/psim/mem.ml: Array Hashtbl List Machine

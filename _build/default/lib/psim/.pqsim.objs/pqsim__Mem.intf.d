lib/psim/mem.mli: Machine

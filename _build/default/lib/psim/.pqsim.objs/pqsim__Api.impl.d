lib/psim/api.ml: Effect Sim

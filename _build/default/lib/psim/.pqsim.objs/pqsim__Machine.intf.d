lib/psim/machine.mli:

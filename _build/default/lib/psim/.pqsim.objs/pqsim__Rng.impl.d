lib/psim/rng.ml: Int64

lib/psim/machine.ml:

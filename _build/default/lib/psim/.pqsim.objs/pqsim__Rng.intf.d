lib/psim/rng.mli:

lib/psim/evq.ml: Array

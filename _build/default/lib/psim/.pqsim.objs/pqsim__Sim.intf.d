lib/psim/sim.mli: Effect Machine Mem Stats

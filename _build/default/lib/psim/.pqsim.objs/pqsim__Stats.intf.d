lib/psim/stats.mli:

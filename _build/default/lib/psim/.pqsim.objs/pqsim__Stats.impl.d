lib/psim/stats.ml: Array Hashtbl List

lib/psim/evq.mli:

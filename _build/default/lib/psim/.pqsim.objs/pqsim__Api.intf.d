lib/psim/api.mli:

open Pqsim

(* location-word states; >= 0 means "open to diffraction at node n" *)
let idle = -2
let locked = -1
let diffracted = -3

type node = { toggle : int; prism : int; prism_width : int }

let create mem ~nprocs ?depth ?(attempts = 2) ?(spin = 12) () =
  let depth =
    match depth with
    | Some d -> d
    | None ->
        let rec log2 v acc = if v <= 1 then acc else log2 (v / 2) (acc + 1) in
        max 1 (log2 nprocs 0 / 2)
  in
  let nleaves = 1 lsl depth in
  (* nodes in heap order 1 .. nleaves-1; prisms shrink with depth *)
  let nodes =
    Array.init nleaves (fun n ->
        let prism_width =
          if n = 0 then 1
          else
            let rec level v acc = if v <= 1 then acc else level (v / 2) (acc + 1) in
            max 1 (nprocs / (2 lsl level n 0))
        in
        let prism = Mem.alloc mem prism_width in
        for i = 0 to prism_width - 1 do
          Mem.poke mem (prism + i) (-1)
        done;
        { toggle = Mem.alloc mem 1; prism; prism_width })
  in
  let leaves = Array.init nleaves (fun _ -> Mem.alloc mem 1) in
  let locations = Mem.alloc mem nprocs in
  for p = 0 to nprocs - 1 do
    Mem.poke mem (locations + p) idle
  done;
  let loc pid = locations + pid in
  let cas_faa addr =
    let b = Pqsync.Backoff.make () in
    let rec go () =
      let v = Api.read addr in
      if Api.cas addr ~expected:v ~desired:(v + 1) then v
      else begin
        Pqsync.Backoff.once b;
        go ()
      end
    in
    go ()
  in
  let toggle addr =
    let b = Pqsync.Backoff.make () in
    let rec go () =
      let v = Api.read addr in
      if Api.cas addr ~expected:v ~desired:(1 - v) then v
      else begin
        Pqsync.Backoff.once b;
        go ()
      end
    in
    go ()
  in
  (* Pass one balancer: returns the direction (0 = left, 1 = right).
     Either we diffract a partner (we go left, it goes right), we are
     diffracted ourselves, or we toggle. *)
  let pass n =
    let me = Api.self () in
    let node = nodes.(n) in
    Api.write (loc me) n;
    let exception Dir of int in
    try
      for _ = 1 to attempts do
        let slot = node.prism + Api.rand node.prism_width in
        let q = Api.swap slot me in
        if q >= 0 && q <> me then begin
          if Api.cas (loc me) ~expected:n ~desired:locked then begin
            if Api.cas (loc q) ~expected:n ~desired:diffracted then
              raise (Dir 0) (* diffracted [q] to the right, we go left *)
            else Api.write (loc me) n (* release ourselves, try again *)
          end
          else begin
            (* somebody committed to diffracting us *)
            ignore (Api.await (loc me) ~until:(fun v -> v = diffracted));
            raise (Dir 1)
          end
        end;
        Api.work spin;
        if Api.read (loc me) <> n then begin
          ignore (Api.await (loc me) ~until:(fun v -> v = diffracted));
          raise (Dir 1)
        end
      done;
      (* prism failed: close ourselves off, then take the toggle *)
      if Api.cas (loc me) ~expected:n ~desired:locked then
        raise (Dir (toggle node.toggle))
      else begin
        ignore (Api.await (loc me) ~until:(fun v -> v = diffracted));
        raise (Dir 1)
      end
    with Dir d -> d
  in
  let inc () =
    let n = ref 0 (* index into [nodes]: 0 is the root here *) in
    let leaf = ref 0 in
    for level = 0 to depth - 1 do
      let d = pass !n in
      leaf := (!leaf lsl 1) lor d;
      (* children of node n (0-based heap order) *)
      n := (2 * !n) + 1 + d;
      ignore level
    done;
    let k = cas_faa leaves.(!leaf) in
    !leaf + (nleaves * k)
  in
  let read_now mem =
    Array.fold_left (fun acc a -> acc + Mem.peek mem a) 0 leaves
  in
  { Ctr_intf.name = Printf.sprintf "dtree[%d]" depth; inc; read_now }

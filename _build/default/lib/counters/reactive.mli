(** Reactive counter in the style of Lim & Agarwal (ASPLOS 1994) — the
    {e centralized} adaptivity alternative the paper contrasts with
    combining funnels (Section 1): under low load use a simple
    lock-based counter, under high load replace the whole structure with
    a combining tree.

    A shared mode word selects the active implementation; both paths
    apply their updates to the same central counter word with
    compare-and-swap, so correctness never depends on the mode (it is a
    performance hint, flipped with hysteresis: repeated lock-acquire
    contention switches up, repeated un-combined climbs switch down).
    The funnel paper's point — which the counter shootout illustrates —
    is that this adapts per-structure rather than per-hot-spot, and the
    wholesale switch needs global agreement the funnel's local adaption
    avoids. *)

val create :
  Pqsim.Mem.t ->
  nprocs:int ->
  ?up_after:int ->
  ?down_after:int ->
  unit ->
  Ctr_intf.t

val mode_now : Pqsim.Mem.t -> Ctr_intf.t -> int
(** 0 = lock-based, 1 = combining tree; for tests.  Only valid on
    counters made by {!create}. *)

lib/counters/adapters.ml: Ctr_intf Pqfunnel Pqstruct

lib/counters/bitonic.ml: Api Array Ctr_intf Fun List Mem Pqsim Pqsync Printf

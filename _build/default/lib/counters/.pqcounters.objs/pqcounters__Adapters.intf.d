lib/counters/adapters.mli: Ctr_intf Pqsim

lib/counters/reactive.ml: Api Array Combtree Ctr_intf Hashtbl Mem Pqsim Pqsync Printf

lib/counters/combtree.ml: Api Array Ctr_intf List Mem Pqsim Pqsync

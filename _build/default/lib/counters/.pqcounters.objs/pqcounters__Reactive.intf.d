lib/counters/reactive.mli: Ctr_intf Pqsim

lib/counters/dtree.ml: Api Array Ctr_intf Mem Pqsim Pqsync Printf

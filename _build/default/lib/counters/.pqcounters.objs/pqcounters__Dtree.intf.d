lib/counters/dtree.mli: Ctr_intf Pqsim

lib/counters/ctr_intf.ml: Pqsim

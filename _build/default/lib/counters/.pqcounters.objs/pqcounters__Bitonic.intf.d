lib/counters/bitonic.mli: Ctr_intf Pqsim

lib/counters/combtree.mli: Ctr_intf Pqsim

open Pqsim

(* ------------------------------------------------------------------ *)
(* Network construction.  A network over a list of wires is a list of
   stages (balancers that can fire in parallel) plus the output order of
   the wires — the order in which the step property holds. *)

let even l = List.filteri (fun i _ -> i mod 2 = 0) l
let odd l = List.filteri (fun i _ -> i mod 2 = 1) l

(* parallel composition of two stage lists *)
let beside l1 l2 =
  let rec go a b =
    match (a, b) with
    | [], [] -> []
    | x :: xs, [] -> x :: go xs []
    | [], y :: ys -> y :: go [] ys
    | x :: xs, y :: ys -> (x @ y) :: go xs ys
  in
  go l1 l2

(* Merger[2k]: merges two step-property sequences into one.  M1 takes the
   evens of the top sequence with the odds of the bottom, M2 the
   complement; a final rank of balancers knits their outputs together. *)
let rec merger top bot =
  match (top, bot) with
  | [ a ], [ b ] -> ([ [ (a, b) ] ], [ a; b ])
  | _ ->
      let l1, z1 = merger (even top) (odd bot) in
      let l2, z2 = merger (odd top) (even bot) in
      let final = List.map2 (fun a b -> (a, b)) z1 z2 in
      ( beside l1 l2 @ [ final ],
        List.concat (List.map2 (fun a b -> [ a; b ]) z1 z2) )

let rec network wires =
  match wires with
  | [ _ ] -> ([], wires)
  | _ ->
      let n = List.length wires in
      let top = List.filteri (fun i _ -> i < n / 2) wires in
      let bot = List.filteri (fun i _ -> i >= n / 2) wires in
      let lt, ot = network top in
      let lb, ob = network bot in
      let lm, om = merger ot ob in
      (beside lt lb @ lm, om)

let stages ~width =
  let layers, _ = network (List.init width Fun.id) in
  List.length layers

(* ------------------------------------------------------------------ *)

let create mem ~width =
  if width < 2 || width land (width - 1) <> 0 then
    invalid_arg "Bitonic.create: width must be a power of two >= 2";
  let layers, out_order = network (List.init width Fun.id) in
  (* per stage, map each wire to (toggle address, top wire, bottom wire) *)
  let stage_maps =
    List.map
      (fun balancers ->
        let map = Array.make width None in
        List.iter
          (fun (a, b) ->
            let toggle = Mem.alloc mem 1 in
            map.(a) <- Some (toggle, a, b);
            map.(b) <- Some (toggle, a, b))
          balancers;
        map)
      layers
  in
  (* counter per output rank: rank r dispenses r, r+width, ... *)
  let rank_of_wire = Array.make width 0 in
  List.iteri (fun rank wire -> rank_of_wire.(wire) <- rank) out_order;
  let wire_counters = Array.init width (fun _ -> Mem.alloc mem 1) in
  (* the machine has no fetch-and-add: balancers toggle with a CAS loop *)
  let toggle addr =
    let b = Pqsync.Backoff.make () in
    let rec go () =
      let v = Api.read addr in
      if Api.cas addr ~expected:v ~desired:(1 - v) then v
      else begin
        Pqsync.Backoff.once b;
        go ()
      end
    in
    go ()
  in
  let cas_faa addr =
    let b = Pqsync.Backoff.make () in
    let rec go () =
      let v = Api.read addr in
      if Api.cas addr ~expected:v ~desired:(v + 1) then v
      else begin
        Pqsync.Backoff.once b;
        go ()
      end
    in
    go ()
  in
  let inc () =
    let wire = ref (Api.rand width) in
    List.iter
      (fun map ->
        match map.(!wire) with
        | None -> ()
        | Some (t, top, bot) ->
            wire := if toggle t = 0 then top else bot)
      stage_maps;
    let rank = rank_of_wire.(!wire) in
    let k = cas_faa wire_counters.(rank) in
    rank + (width * k)
  in
  let read_now mem =
    Array.fold_left (fun acc a -> acc + Mem.peek mem a) 0 wire_counters
  in
  { Ctr_intf.name = Printf.sprintf "bitonic[%d]" width; inc; read_now }

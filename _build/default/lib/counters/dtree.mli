(** Diffracting tree (Shavit & Zemach, TOCS 1996).

    A binary tree of balancers, each fronted by a {e prism}: an array in
    which processors entering the balancer try to pair off.  A paired
    ("diffracted") duo splits left/right without touching the balancer's
    toggle bit, so under high load most tokens never serialize; unpaired
    tokens fall back to a CAS toggle.  Leaf [i] of a depth-[d] tree
    dispenses [i], [i + 2^d], [i + 2·2^d], ...

    The paper cites diffracting trees as a scalable fetch-and-increment
    whose operations "cannot be readily transformed into the new bounded
    fetch-and-increment required for our priority queues" — this module
    exists to back that comparison with numbers. *)

val create :
  Pqsim.Mem.t ->
  nprocs:int ->
  ?depth:int ->
  ?attempts:int ->
  ?spin:int ->
  unit ->
  Ctr_intf.t
(** [depth] defaults to roughly half of log2(nprocs), the sweet spot the
    diffracting-tree paper reports *)

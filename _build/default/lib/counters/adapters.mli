(** {!Ctr_intf.t} views of the other fetch-and-increment implementations
    in this repository, so the counter shootout can sweep one list. *)

val cas : Pqsim.Mem.t -> Ctr_intf.t
(** bare CAS retry loop on one word *)

val mcs : Pqsim.Mem.t -> nprocs:int -> Ctr_intf.t
(** MCS-lock-protected counter *)

val funnel : Pqsim.Mem.t -> nprocs:int -> Ctr_intf.t
(** combining funnel (homogeneous increments) *)

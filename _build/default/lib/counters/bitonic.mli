(** Bitonic counting network (Aspnes, Herlihy & Shavit, JACM 1994).

    A width-[w] network of two-input {e balancers} — toggle bits that send
    successive tokens alternately to their top and bottom output wires —
    wired as Batcher's bitonic merger.  Tokens enter on any wire, traverse
    O(log² w) balancer stages, and leave with the {e step property}: the
    i-th output wire (in the network's output order) dispenses values
    i, i+w, i+2w, ...  Contention at any single balancer is a fraction of
    the total load, which is what makes the network scale; but tokens
    cannot be "un-counted", so no bounded decrement is possible — the
    limitation the paper's funnel counter lifts. *)

val create : Pqsim.Mem.t -> width:int -> Ctr_intf.t
(** [width] must be a power of two *)

val stages : width:int -> int
(** network depth, for tests: bitonic[w] has k(k+1)/2 stages, w = 2^k *)

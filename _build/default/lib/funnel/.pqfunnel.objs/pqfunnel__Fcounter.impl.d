lib/funnel/fcounter.ml: Api Engine List Mem Pqsim

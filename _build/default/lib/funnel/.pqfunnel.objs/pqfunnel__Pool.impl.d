lib/funnel/pool.ml: Array Pqsim

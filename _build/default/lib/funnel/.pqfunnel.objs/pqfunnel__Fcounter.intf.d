lib/funnel/fcounter.mli: Engine Pqsim

lib/funnel/fqueue.ml: Api Engine List Mem Pool Pqsim Pqsync

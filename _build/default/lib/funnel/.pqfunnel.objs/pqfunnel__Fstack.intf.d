lib/funnel/fstack.mli: Engine Pool Pqsim

lib/funnel/engine.ml: Api Array Float List Mem Pqsim Pqsync

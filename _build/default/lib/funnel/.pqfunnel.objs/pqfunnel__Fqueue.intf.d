lib/funnel/fqueue.mli: Engine Pool Pqsim

lib/funnel/fstack.ml: Api Engine List Mem Pool Pqsim

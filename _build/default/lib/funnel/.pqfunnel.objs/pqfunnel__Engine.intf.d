lib/funnel/engine.mli: Pqsim

lib/funnel/pool.mli: Pqsim

(** Shared node pool for funnel stacks.

    Stack nodes are bump-allocated per processor and never reused (detached
    pop chains must stay immutable).  When one queue contains many stacks —
    LinearFunnels has one per priority — they share a single pool sized by
    the total number of pushes a processor will ever perform against the
    whole queue. *)

type t

val create : Pqsim.Mem.t -> nprocs:int -> pushes_per_proc:int -> t

val alloc : t -> pid:int -> int
(** returns the address of a fresh 2-word node; raises [Failure] when the
    processor's share is exhausted *)

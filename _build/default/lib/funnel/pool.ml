type t = { base : int; cap : int; used : int array }

let create mem ~nprocs ~pushes_per_proc =
  {
    base = Pqsim.Mem.alloc mem (nprocs * pushes_per_proc * 2);
    cap = pushes_per_proc;
    used = Array.make nprocs 0;
  }

let alloc t ~pid =
  let i = t.used.(pid) in
  if i >= t.cap then failwith "Pool: node pool exhausted";
  t.used.(pid) <- i + 1;
  t.base + (((pid * t.cap) + i) * 2)

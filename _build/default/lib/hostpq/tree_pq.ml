let name = "tree-pq"

type 'a t = {
  nleaves : int;
  npriorities : int;
  counters : Bounded_counter.t array; (* 1-based internal nodes *)
  stacks : 'a Elim_stack.t array;
}

let create ~npriorities () =
  if npriorities <= 0 then invalid_arg "Tree_pq.create";
  let rec pow2 n = if n >= npriorities then n else pow2 (2 * n) in
  let nleaves = pow2 1 in
  {
    nleaves;
    npriorities;
    counters =
      Array.init nleaves (fun _ -> Bounded_counter.create ~floor:0 0);
    stacks = Array.init npriorities (fun _ -> Elim_stack.create ());
  }

let insert t ~pri v =
  if pri < 0 || pri >= t.npriorities then invalid_arg "Tree_pq.insert";
  Elim_stack.push t.stacks.(pri) v;
  let n = ref (t.nleaves + pri) in
  while !n > 1 do
    let parent = !n / 2 in
    if !n land 1 = 0 then ignore (Bounded_counter.inc t.counters.(parent));
    n := parent
  done

let delete_min t =
  let n = ref 1 in
  while !n < t.nleaves do
    let i = Bounded_counter.dec t.counters.(!n) in
    n := if i > 0 then 2 * !n else (2 * !n) + 1
  done;
  let pri = !n - t.nleaves in
  if pri >= t.npriorities then None
  else
    match Elim_stack.pop t.stacks.(pri) with
    | Some v -> Some (pri, v)
    | None -> None

let length t =
  Array.fold_left (fun acc s -> acc + Elim_stack.length s) 0 t.stacks

let check t =
  let leaf_count pri =
    if pri < t.npriorities then Elim_stack.length t.stacks.(pri) else 0
  in
  let rec subtree n =
    if n >= t.nleaves then leaf_count (n - t.nleaves)
    else subtree (2 * n) + subtree ((2 * n) + 1)
  in
  let rec go n =
    if n >= t.nleaves then Ok ()
    else
      let c = Bounded_counter.get t.counters.(n) in
      let expected = subtree (2 * n) in
      if c <> expected then
        Error
          (Printf.sprintf "counter %d holds %d, left subtree has %d" n c
             expected)
      else match go (2 * n) with Ok () -> go ((2 * n) + 1) | e -> e
  in
  go 1

type t = { v : int Atomic.t; floor : int option; ceil : int option }

let create ?floor ?ceil init =
  (match (floor, ceil) with
  | Some f, Some c when f > c -> invalid_arg "Bounded_counter.create"
  | _ -> ());
  { v = Atomic.make init; floor; ceil }

let get t = Atomic.get t.v

let rec bounded t ~stop ~delta =
  let old = Atomic.get t.v in
  if stop old then old
  else if Atomic.compare_and_set t.v old (old + delta) then old
  else begin
    Domain.cpu_relax ();
    bounded t ~stop ~delta
  end

let inc t =
  match t.ceil with
  | None -> Atomic.fetch_and_add t.v 1
  | Some b -> bounded t ~stop:(fun v -> v >= b) ~delta:1

let dec t =
  match t.floor with
  | None -> Atomic.fetch_and_add t.v (-1)
  | Some b -> bounded t ~stop:(fun v -> v <= b) ~delta:(-1)

let add t d =
  if t.floor <> None || t.ceil <> None then
    invalid_arg "Bounded_counter.add: bounded counters need inc/dec";
  Atomic.fetch_and_add t.v d

(** Common signature of the host (real multicore) bounded-range priority
    queues.

    These are the paper's designs transplanted onto OCaml 5 domains and
    hardware atomics, usable by real applications: same API shape as the
    simulated queues, minus the simulation plumbing.  Payloads are
    arbitrary values of type ['a]. *)

module type S = sig
  type 'a t

  val name : string

  val create : npriorities:int -> unit -> 'a t
  (** priorities range over [0, npriorities) *)

  val insert : 'a t -> pri:int -> 'a -> unit
  (** @raise Invalid_argument if [pri] is out of range *)

  val delete_min : 'a t -> (int * 'a) option
  (** removes an element of minimal priority; [None] if the queue appears
      empty.  Queues built from distributed counters are quiescently
      consistent: overlapping operations may be reordered, but once the
      queue is quiet the k next deletions return the k smallest
      elements. *)

  val length : 'a t -> int
  (** element count; approximate while operations are in flight *)
end

(** SimpleLinear on real hardware: one mutex-protected bin per priority
    plus an atomic size word so delete-min's scan tests emptiness with a
    single load and locks only promising bins.  Linearizable; excellent
    until the lowest bins become contended. *)

include Host_intf.S

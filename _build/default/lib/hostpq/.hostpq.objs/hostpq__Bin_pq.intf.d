lib/hostpq/bin_pq.mli: Host_intf

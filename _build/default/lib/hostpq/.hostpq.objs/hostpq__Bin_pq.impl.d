lib/hostpq/bin_pq.ml: Array Atomic Mutex

lib/hostpq/tree_pq.ml: Array Bounded_counter Elim_stack Printf

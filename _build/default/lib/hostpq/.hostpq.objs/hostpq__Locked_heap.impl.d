lib/hostpq/locked_heap.ml: Array Mutex

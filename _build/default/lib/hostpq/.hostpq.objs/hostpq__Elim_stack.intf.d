lib/hostpq/elim_stack.mli:

lib/hostpq/tree_pq.mli: Host_intf

lib/hostpq/locked_heap.mli: Host_intf

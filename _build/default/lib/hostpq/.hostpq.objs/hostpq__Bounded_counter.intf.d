lib/hostpq/bounded_counter.mli:

lib/hostpq/host_intf.ml:

lib/hostpq/elim_stack.ml: Array Atomic Domain List Random

lib/hostpq/bounded_counter.ml: Atomic Domain

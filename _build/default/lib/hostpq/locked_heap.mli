(** The SingleLock baseline on real hardware: a resizable array-based
    binary min-heap behind one [Mutex].  Linearizable; the right choice at
    low contention. *)

include Host_intf.S

(** The FunnelTree design on real hardware: a binary tree of bounded
    atomic counters over per-priority elimination stacks.

    Insertion pushes into its priority's stack and walks to the root,
    fetch-and-incrementing every counter entered from the left; delete-min
    descends from the root by bounded fetch-and-decrement (left when the
    counter is positive).  Instead of combining funnels — which need
    processor identities and spinning — the hardware version relies on
    elimination stacks at the leaves and bounded CAS counters, preserving
    the decentralised traffic pattern.  Quiescently consistent. *)

include Host_intf.S

val check : 'a t -> (unit, string) result
(** at quiescence: every counter equals its left subtree's population *)

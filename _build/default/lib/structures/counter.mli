(** Shared counters supporting fetch-and-increment / decrement and their
    bounded variants (Figure 1 of the paper).

    The unbounded operations map to the machine's fetch-and-add; the
    bounded ones are compare-and-swap retry loops with randomised backoff —
    the "hardware" implementation the paper contrasts with combining
    funnels.  Under contention the retry loop serializes at the counter's
    cache line, which is exactly the hot-spot behaviour SimpleTree
    exhibits at its root. *)

type t

val create : Pqsim.Mem.t -> init:int -> t
val addr : t -> int
val get : t -> int
(** costed read *)

val peek : Pqsim.Mem.t -> t -> int
(** host-side, for verification *)

val fai : t -> int
(** fetch-and-increment; returns the pre-increment value *)

val fad : t -> int
(** fetch-and-decrement *)

val bfai : t -> bound:int -> int
(** [bfai t ~bound] increments only if the current value is below [bound];
    always returns the pre-operation value (Figure 1 semantics). *)

val bfad : t -> bound:int -> int
(** [bfad t ~bound] decrements only if the current value is above [bound];
    always returns the pre-operation value. *)

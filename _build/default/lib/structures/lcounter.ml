open Pqsim

type t = { lock : Pqsync.Mcs.t; value : int }

let create mem ~nprocs ~init =
  let lock = Pqsync.Mcs.create mem ~nprocs in
  let value = Mem.alloc mem 1 in
  Mem.poke mem value init;
  { lock; value }

let get t = Api.read t.value
let peek mem t = Mem.peek mem t.value

let apply t f =
  Pqsync.Mcs.acquire t.lock;
  let old = Api.read t.value in
  let v = f old in
  if v <> old then Api.write t.value v;
  Pqsync.Mcs.release t.lock;
  old

let fai t = apply t (fun v -> v + 1)
let fad t = apply t (fun v -> v - 1)
let bfai t ~bound = apply t (fun v -> if v >= bound then v else v + 1)
let bfad t ~bound = apply t (fun v -> if v <= bound then v else v - 1)

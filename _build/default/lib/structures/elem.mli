(** Packing of (priority, payload) pairs into single simulated-memory words.

    Heap-based queues keep one word per element ordered primarily by
    priority; bin-based queues store only the payload (the bin index is the
    priority).  Packing both into one word keeps element movement a single
    memory operation, as in the paper's implementations. *)

val max_payload : int
(** payloads must lie in [0, max_payload) *)

val pack : pri:int -> payload:int -> int
(** ordered by priority first, then payload *)

val pri : int -> int
val payload : int -> int

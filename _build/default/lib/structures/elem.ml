let bits = 24
let max_payload = 1 lsl bits

let pack ~pri ~payload =
  if payload < 0 || payload >= max_payload then invalid_arg "Elem.pack";
  (pri lsl bits) lor payload

let pri e = e lsr bits
let payload e = e land (max_payload - 1)

lib/structures/elem.ml:

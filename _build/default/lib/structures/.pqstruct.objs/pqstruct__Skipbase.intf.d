lib/structures/skipbase.mli: Bin Pqsim

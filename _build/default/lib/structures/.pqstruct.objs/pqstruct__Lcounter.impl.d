lib/structures/lcounter.ml: Api Mem Pqsim Pqsync

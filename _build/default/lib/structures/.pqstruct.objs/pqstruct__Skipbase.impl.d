lib/structures/skipbase.ml: Api Array Bin List Mem Pqsim Pqsync Printf Result Rng

lib/structures/counter.ml: Api Mem Pqsim Pqsync

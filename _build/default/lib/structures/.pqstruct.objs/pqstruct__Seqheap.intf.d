lib/structures/seqheap.mli: Pqsim

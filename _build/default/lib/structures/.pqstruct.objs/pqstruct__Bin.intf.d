lib/structures/bin.mli: Pqsim

lib/structures/seqheap.ml: Api List Mem Pqsim

lib/structures/lcounter.mli: Pqsim

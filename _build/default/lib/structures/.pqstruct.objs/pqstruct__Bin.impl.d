lib/structures/bin.ml: Api List Mem Pqsim Pqsync

lib/structures/elem.mli:

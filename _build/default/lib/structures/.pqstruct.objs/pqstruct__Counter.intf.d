lib/structures/counter.mli: Pqsim

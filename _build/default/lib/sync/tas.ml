open Pqsim

type t = int (* address of the lock word: 0 free, 1 held *)

let create mem = Mem.alloc mem 1

let try_acquire t = Api.cas t ~expected:0 ~desired:1

let acquire t =
  let b = Backoff.make () in
  let rec go () =
    if not (try_acquire t) then begin
      (* test loop on the cached copy until the lock looks free *)
      ignore (Api.await t ~until:(fun v -> v = 0));
      Backoff.once b;
      go ()
    end
  in
  go ()

let release t = Api.write t 0
let held t = Api.read t = 1

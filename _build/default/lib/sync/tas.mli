(** Test-and-test-and-set spin lock with backoff, over simulated memory.

    Used as a cheap baseline lock and inside structures where queueing
    behaviour is not wanted.  Spinning is on a cached copy (via the
    engine's [Wait_change]), so waiting generates no memory traffic. *)

type t

val create : Pqsim.Mem.t -> t
val acquire : t -> unit
val try_acquire : t -> bool
(** non-blocking; true on success *)

val release : t -> unit
val held : t -> bool
(** costed read of the lock word; mostly for assertions in tests *)

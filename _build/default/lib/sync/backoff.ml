type t = { init : int; limit : int; mutable window : int }

let make ?(init = 4) ?(max = 512) () =
  if init <= 0 || max < init then invalid_arg "Backoff.make";
  { init; limit = max; window = init }

let once t =
  Pqsim.Api.work (1 + Pqsim.Api.rand t.window);
  let doubled = 2 * t.window in
  t.window <- (if doubled > t.limit then t.limit else doubled)

let reset t = t.window <- t.init

(** Sense-reversing centralized barrier over simulated memory.  Used by
    benchmark drivers and tests to create quiescent points between
    workload phases. *)

type t

val create : Pqsim.Mem.t -> nprocs:int -> t

val wait : t -> unit
(** blocks until all [nprocs] processors have arrived *)

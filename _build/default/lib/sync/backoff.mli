(** Randomised exponential backoff for retry loops on the simulated
    machine.  Processor-local: create one per operation attempt. *)

type t

val make : ?init:int -> ?max:int -> unit -> t
(** [make ()] starts with a window of [init] cycles (default 4) doubling up
    to [max] (default 512). *)

val once : t -> unit
(** [once t] spins locally for a random duration within the current window
    and widens the window. *)

val reset : t -> unit

open Pqsim

(* Layout: [tail][node_0 locked][node_0 next][node_1 locked][node_1 next]...
   A node address identifies the waiter; tail = 0 means free. *)

type t = { tail : int; nodes : int }

let words ~nprocs = 1 + (2 * nprocs)

let create mem ~nprocs =
  let tail = Mem.alloc mem (words ~nprocs) in
  { tail; nodes = tail + 1 }

let node t pid = t.nodes + (2 * pid)
let locked_of node = node
let next_of node = node + 1

let acquire t =
  let me = node t (Api.self ()) in
  Api.write (next_of me) 0;
  Api.write (locked_of me) 1;
  let pred = Api.swap t.tail me in
  if pred <> 0 then begin
    Api.write (next_of pred) me;
    ignore (Api.await (locked_of me) ~until:(fun v -> v = 0))
  end

let try_acquire t =
  let me = node t (Api.self ()) in
  Api.write (next_of me) 0;
  Api.cas t.tail ~expected:0 ~desired:me

let release t =
  let me = node t (Api.self ()) in
  let succ = Api.read (next_of me) in
  if succ <> 0 then Api.write (locked_of succ) 0
  else if not (Api.cas t.tail ~expected:me ~desired:0) then begin
    (* a successor is in the middle of linking itself in *)
    let succ = Api.await (next_of me) ~until:(fun v -> v <> 0) in
    Api.write (locked_of succ) 0
  end

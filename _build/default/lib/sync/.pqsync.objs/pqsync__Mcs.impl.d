lib/sync/mcs.ml: Api Mem Pqsim

lib/sync/barrier.mli: Pqsim

lib/sync/backoff.mli:

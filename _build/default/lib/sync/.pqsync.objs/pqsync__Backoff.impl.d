lib/sync/backoff.ml: Pqsim

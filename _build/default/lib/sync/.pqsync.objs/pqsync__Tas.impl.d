lib/sync/tas.ml: Api Backoff Mem Pqsim

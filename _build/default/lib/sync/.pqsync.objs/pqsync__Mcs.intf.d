lib/sync/mcs.mli: Pqsim

lib/sync/tas.mli: Pqsim

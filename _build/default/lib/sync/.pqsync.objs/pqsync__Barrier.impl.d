lib/sync/barrier.ml: Api Mem Pqsim

open Pqsim

type t = { count : int; sense : int; nprocs : int }

let create mem ~nprocs =
  { count = Mem.alloc mem 1; sense = Mem.alloc mem 1; nprocs }

let wait t =
  let s = Api.read t.sense in
  if Api.faa t.count 1 = t.nprocs - 1 then begin
    Api.write t.count 0;
    Api.write t.sense (1 - s)
  end
  else ignore (Api.await t.sense ~until:(fun v -> v <> s))
